/**
 * @file
 * Serving-layer throughput benchmark: how fast does the host push
 * multi-tenant serve runs, and what does the simulated machine
 * deliver, at three offered-load points (light / moderate / heavy)?
 *
 * Emits BENCH_serving.json with, per load point, completed jobs and
 * simulated cycles per host second plus the simulated tail metrics —
 * a host-throughput baseline for the serving subsystem that CI and
 * perf work can diff across revisions.
 *
 * Environment: DCL1_SERVE_JOBS (offered jobs per point, default 40),
 * DCL1_SERVE_HORIZON (cycle cap, default 400000), DCL1_JOBS (worker
 * threads). Wall time comes from the execution engine's per-job
 * measurement, never from the model.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "common/env.hh"
#include "common/log.hh"
#include "core/experiment.hh"
#include "exec/atomic_file.hh"
#include "exec/job_runner.hh"
#include "serve/serve_sim.hh"
#include "stats/stats.hh"

using namespace dcl1;

int
main()
{
    const std::size_t numJobs = static_cast<std::size_t>(
        envIntOr("DCL1_SERVE_JOBS", 40, 1, 1'000'000));
    const Cycle horizon = static_cast<Cycle>(
        envIntOr("DCL1_SERVE_HORIZON", 400'000, 1000, 1'000'000'000));

    const core::SystemConfig sys;
    const core::DesignConfig design = core::clusteredDcl1(40, 10, true);
    const serve::JobMix mix =
        serve::mixFromAppList("T-AlexNet,C-BFS,P-2DCONV");
    const double lambdas[] = {0.2, 1.0, 4.0};

    std::vector<serve::ServeSummary> summaries(3);
    exec::ExecOptions eopts;
    eopts.jobs = static_cast<std::size_t>(
        envIntOr("DCL1_JOBS", 0, 0, 4096));
    eopts.maxRetries = 0;
    exec::JobRunner runner(eopts);
    std::vector<exec::JobSpec> specs(3);
    for (std::size_t i = 0; i < 3; ++i) {
        specs[i].label = "serve/" + stats::formatDouble(lambdas[i]);
        specs[i].fn = [&, i](exec::JobContext &) {
            serve::ServeOptions opts;
            opts.policy = serve::Policy::Fcfs;
            opts.lambdaJobsPerKcycle = lambdas[i];
            opts.numJobs = numJobs;
            opts.horizon = horizon;
            opts.seed = 1;
            serve::ServeSim sim(sys, design, mix, opts);
            summaries[i] = sim.run();
            return summaries[i].machine;
        };
    }
    const std::vector<exec::JobResult> results = runner.run(specs);
    for (const exec::JobResult &r : results)
        if (!r.ok)
            fatal("serve bench cell %s failed: %s", r.label.c_str(),
                  r.error.c_str());

    std::printf("Serving throughput (%s, %zu jobs/point, horizon %llu)\n",
                design.name.c_str(), numJobs,
                static_cast<unsigned long long>(horizon));
    std::printf("%7s %8s %8s %12s %12s %10s\n", "lambda", "done",
                "cens", "jobs/sec", "Mcycles/sec", "p99");

    exec::AtomicFileWriter out(
        bench::benchOutputPath("BENCH_serving.json"));
    out.stream() << "{\n  \"bench\": \"serving\",\n  \"design\": \""
                 << design.name << "\",\n  \"jobs_per_point\": "
                 << numJobs << ",\n  \"horizon\": " << horizon
                 << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < 3; ++i) {
        const serve::ServeSummary &s = summaries[i];
        const double wallSec = results[i].wallMs / 1000.0;
        const double jobsPerSec =
            wallSec > 0.0 ? double(s.completed) / wallSec : 0.0;
        const double cyclesPerSec =
            wallSec > 0.0 ? double(s.endCycle) / wallSec : 0.0;
        std::printf("%7s %8zu %8zu %12.1f %12.2f %10.0f\n",
                    stats::formatDouble(lambdas[i]).c_str(), s.completed,
                    s.censored, jobsPerSec, cyclesPerSec / 1e6,
                    s.p99Latency);
        out.stream() << "    {\"lambda\": "
                     << stats::formatDouble(lambdas[i])
                     << ", \"completed\": " << s.completed
                     << ", \"censored\": " << s.censored
                     << ", \"end_cycle\": " << s.endCycle
                     << ", \"jobs_per_sec\": "
                     << stats::formatDouble(jobsPerSec)
                     << ", \"sim_cycles_per_sec\": "
                     << stats::formatDouble(cyclesPerSec)
                     << ", \"p99_latency\": "
                     << stats::formatDouble(s.p99Latency)
                     << ", \"goodput_per_kcycle\": "
                     << stats::formatDouble(s.completedPerKcycle) << "}"
                     << (i + 1 < 3 ? "," : "") << "\n";
    }
    out.stream() << "  ]\n}\n";
    out.commit();
    inform("wrote %s", out.path().c_str());
    return 0;
}
