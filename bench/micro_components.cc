/**
 * @file
 * Component micro-benchmarks (google-benchmark): raw simulation speed
 * of the cache bank, crossbar, DRAM channel, and the full system tick.
 * These measure the simulator itself, not the modelled GPU.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "core/gpu_system.hh"
#include "mem/cache_bank.hh"
#include "mem/dram.hh"
#include "noc/crossbar.hh"
#include "workload/app_catalog.hh"

using namespace dcl1;

namespace
{

void
BM_CacheBankAccess(benchmark::State &state)
{
    mem::CacheBankParams p;
    p.sizeBytes = 16 * 1024;
    mem::CacheBank bank(p);
    Rng rng(1);
    Cycle now = 0;
    for (auto _ : state) {
        ++now;
        if (!bank.canAccept(now))
            continue;
        auto r = mem::makeRequest(mem::MemOp::Read,
                                  rng.below(256) * 128, 32, 0, 0, now);
        if (bank.access(r, now) == mem::AccessOutcome::Miss) {
            auto f = bank.takeDownstream();
            if (f) {
                (*f)->isReply = true;
                bank.fill(std::move(*f), now);
            }
        }
        while (bank.takeCompleted(now)) {
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheBankAccess);

void
BM_CrossbarTick80x32(benchmark::State &state)
{
    noc::XbarParams p;
    p.numInputs = 80;
    p.numOutputs = 32;
    p.clockRatio = 1.0;
    noc::Crossbar x(p);
    Rng rng(2);
    for (auto _ : state) {
        for (std::uint32_t in = 0; in < 80; ++in) {
            if (rng.chance(0.1) && x.canInject(in)) {
                noc::Packet pkt;
                pkt.src = in;
                pkt.dst = std::uint32_t(rng.below(32));
                pkt.flits = 1;
                x.inject(std::move(pkt));
            }
        }
        x.tick();
        for (std::uint32_t out = 0; out < 32; ++out)
            while (x.eject(out)) {
            }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CrossbarTick80x32);

void
BM_DramChannel(benchmark::State &state)
{
    mem::DramParams p;
    mem::DramChannel ch(p);
    Rng rng(3);
    Cycle now = 0;
    for (auto _ : state) {
        ++now;
        if (ch.canAccept()) {
            auto r = mem::makeRequest(mem::MemOp::Read,
                                      rng.below(1 << 20) * 128, 32, 0,
                                      0, now);
            r->fetchDepth = 1;
            ch.push(std::move(r), now);
        }
        ch.tick(now);
        while (ch.takeCompleted(now)) {
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramChannel);

void
BM_SystemTick(benchmark::State &state)
{
    const bool dcl1 = state.range(0) != 0;
    core::SystemConfig sys;
    const auto design = dcl1 ? core::clusteredDcl1(40, 10, true)
                             : core::baselineDesign();
    core::GpuSystem gpu(sys, design,
                        workload::appByName("T-AlexNet").params);
    gpu.run(0, 2000); // warm
    for (auto _ : state)
        gpu.tickOnce();
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(design.name);
}
BENCHMARK(BM_SystemTick)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

} // anonymous namespace

BENCHMARK_MAIN();
