#include "bench/bench_common.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "check/check.hh"
#include "common/env.hh"
#include "common/log.hh"
#include "exec/atomic_file.hh"
#include "exec/job_runner.hh"
#include "exec/job_set.hh"
#include "exec/result_sink.hh"
#include "exec/run_manifest.hh"

namespace dcl1::bench
{

namespace
{

/** Bump when RunMetrics serialization or model semantics change. */
constexpr int kCacheSchema = 3;

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, sep))
        out.push_back(item);
    return out;
}

} // anonymous namespace

Harness::Harness(const std::string &title, const std::string &what)
    : opts_(core::ExperimentOptions::fromEnv())
{
    cacheFile_ = envStrOr("DCL1_CACHE", cacheFile_);
    loadCache();

    std::printf("==== %s ====\n", title.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("platform: %s\n", sys_.summary().c_str());
    std::printf("cycles: %llu measured after %llu warmup%s\n\n",
                static_cast<unsigned long long>(opts_.measureCycles),
                static_cast<unsigned long long>(opts_.warmupCycles),
                cacheFile_.empty() ? "" : " (cached)");
}

Harness::~Harness()
{
    if (cacheDirty_)
        saveCache();
}

std::string
Harness::cacheKey(const core::DesignConfig &design,
                  const std::string &app) const
{
    return csprintf("v%d|%s|%s|%llu|%llu|%llu", kCacheSchema,
                    design.name.c_str(), app.c_str(),
                    static_cast<unsigned long long>(opts_.measureCycles),
                    static_cast<unsigned long long>(opts_.warmupCycles),
                    static_cast<unsigned long long>(sys_.seed));
}

void
Harness::prefetch(const std::vector<core::DesignConfig> &designs,
                  const std::vector<workload::AppInfo> &apps,
                  bool with_baseline)
{
    exec::JobSet set;
    // DCL1_TIMELINE=<dir>: emit a per-cell cycle-interval timeline for
    // every prefetched cell. Observability only — cached metrics and
    // printed tables are byte-identical with or without it.
    if (const std::string dir = envStrOr("DCL1_TIMELINE", "");
        !dir.empty())
        set.setTimelineDir(dir);
    // Job index -> harness cache key; memoization may map several
    // (design, app) pairs onto one job.
    std::vector<std::pair<std::size_t, std::string>> wanted;
    auto request = [&](const core::DesignConfig &design,
                       const workload::AppInfo &app) {
        const std::string key = cacheKey(design, app.params.name);
        if (results_.count(key))
            return;
        wanted.emplace_back(
            set.addCell(sys_, design, app.params, opts_), key);
    };
    for (const auto &app : apps) {
        if (with_baseline)
            request(core::baselineDesign(), app);
        for (const auto &design : designs)
            request(design, app);
    }
    if (set.size() == 0)
        return;

    const std::vector<exec::JobResult> results = runJobSet(set);

    for (const auto &[index, key] : wanted) {
        const exec::JobResult &r = results[index];
        if (!r.ok) {
            warn("prefetch: %s failed (%s); the serial run will retry",
                 r.label.c_str(), r.error.c_str());
            continue;
        }
        if (results_.emplace(key, r.metrics).second)
            cacheDirty_ = true;
    }
}

std::vector<exec::JobResult>
runJobSet(const exec::JobSet &set)
{
    exec::JobRunner runner(exec::ExecOptions::fromEnv());
    // DCL1_RUN_DIR makes bench batches durable: completed cells are
    // skipped on a re-run. One directory serves *all* benches — the
    // manifest identity is just the build signature; individual cells
    // are told apart by their durable (design, app, opts, platform,
    // seed) keys.
    std::unique_ptr<exec::RunManifest> manifest;
    if (const std::string dir = envStrOr("DCL1_RUN_DIR", "");
        !dir.empty()) {
        manifest = exec::RunManifest::openOrCreate(dir, "bench");
        runner.attachManifest(manifest.get());
    }
    exec::ProgressSink progress;
    runner.addSink(&progress);
    std::unique_ptr<exec::JsonlSink> jsonl;
    if (!runner.options().jsonlPath.empty()) {
        jsonl = std::make_unique<exec::JsonlSink>(
            runner.options().jsonlPath);
        runner.addSink(jsonl.get());
    }
    return runner.run(set.specs());
}

const core::RunMetrics &
Harness::run(const core::DesignConfig &design,
             const workload::AppInfo &app)
{
    const std::string key = cacheKey(design, app.params.name);
    auto it = results_.find(key);
    if (it != results_.end())
        return it->second;

    std::fprintf(stderr, "  [run] %-18s %s\n", design.name.c_str(),
                 app.params.name.c_str());
    core::RunMetrics rm = core::runOnce(sys_, design, app.params, opts_);
    cacheDirty_ = true;
    return results_.emplace(key, rm).first->second;
}

double
Harness::speedup(const core::DesignConfig &design,
                 const workload::AppInfo &app)
{
    const double base = baseline(app).ipc;
    return base > 0.0 ? run(design, app).ipc / base : 0.0;
}

std::vector<workload::AppInfo>
Harness::apps(bool sensitive_only, bool insensitive_only)
{
    std::vector<workload::AppInfo> out;
    std::vector<std::string> filter;
    if (const std::string f = envStrOr("DCL1_APPS", ""); !f.empty())
        filter = split(f, ',');

    for (const auto &app : workload::appCatalog()) {
        if (sensitive_only && !app.replicationSensitive)
            continue;
        if (insensitive_only && app.replicationSensitive)
            continue;
        if (!filter.empty()) {
            bool keep = false;
            for (const auto &name : filter)
                keep = keep || name == app.params.name;
            if (!keep)
                continue;
        }
        out.push_back(app);
    }
    return out;
}

void
Harness::loadCache()
{
    if (cacheFile_.empty())
        return;
    std::ifstream in(cacheFile_);
    std::string line;
    while (std::getline(in, line)) {
        const auto sep = line.find('\t');
        if (sep == std::string::npos)
            continue;
        const std::string key = line.substr(0, sep);
        const auto vals = split(line.substr(sep + 1), ' ');
        if (vals.size() != 18)
            continue;
        core::RunMetrics rm;
        int i = 0;
        rm.cycles = std::strtoull(vals[i++].c_str(), nullptr, 10);
        rm.instructions = std::strtoull(vals[i++].c_str(), nullptr, 10);
        rm.ipc = std::strtod(vals[i++].c_str(), nullptr);
        rm.l1Accesses = std::strtoull(vals[i++].c_str(), nullptr, 10);
        rm.l1Misses = std::strtoull(vals[i++].c_str(), nullptr, 10);
        rm.l1MissRate = std::strtod(vals[i++].c_str(), nullptr);
        rm.replicationRatio = std::strtod(vals[i++].c_str(), nullptr);
        rm.avgReplicas = std::strtod(vals[i++].c_str(), nullptr);
        rm.maxL1PortUtil = std::strtod(vals[i++].c_str(), nullptr);
        rm.maxCoreReplyLinkUtil = std::strtod(vals[i++].c_str(), nullptr);
        rm.maxMemReplyLinkUtil = std::strtod(vals[i++].c_str(), nullptr);
        rm.avgReadLatency = std::strtod(vals[i++].c_str(), nullptr);
        rm.noc1Flits = std::strtoull(vals[i++].c_str(), nullptr, 10);
        rm.noc2Flits = std::strtoull(vals[i++].c_str(), nullptr, 10);
        rm.l2Accesses = std::strtoull(vals[i++].c_str(), nullptr, 10);
        rm.l2Misses = std::strtoull(vals[i++].c_str(), nullptr, 10);
        rm.dramReads = std::strtoull(vals[i++].c_str(), nullptr, 10);
        rm.dramWrites = std::strtoull(vals[i++].c_str(), nullptr, 10);
        results_.emplace(key, rm);
    }
}

void
Harness::saveCache() const
{
    if (cacheFile_.empty())
        return;
    // Atomic publish: a bench killed mid-save must not truncate the
    // accumulated result cache (possibly hours of simulation).
    exec::AtomicFileWriter writer(cacheFile_);
    std::ostream &out = writer.stream();
    for (const auto &[key, rm] : results_) {
        out << key << '\t' << rm.cycles << ' ' << rm.instructions << ' '
            << rm.ipc << ' ' << rm.l1Accesses << ' ' << rm.l1Misses
            << ' ' << rm.l1MissRate << ' ' << rm.replicationRatio << ' '
            << rm.avgReplicas << ' ' << rm.maxL1PortUtil << ' '
            << rm.maxCoreReplyLinkUtil << ' ' << rm.maxMemReplyLinkUtil
            << ' ' << rm.avgReadLatency << ' ' << rm.noc1Flits << ' '
            << rm.noc2Flits << ' ' << rm.l2Accesses << ' '
            << rm.l2Misses << ' ' << rm.dramReads << ' '
            << rm.dramWrites << '\n';
    }
    writer.commit();
}

std::string
benchOutputPath(const std::string &filename)
{
    const std::string dir = envStrOr("DCL1_BENCH_DIR", "");
    if (dir.empty())
        return filename;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        fatal("DCL1_BENCH_DIR '%s': cannot create directory (%s)",
              dir.c_str(), ec.message().c_str());
    return dir + "/" + filename;
}

std::string
machineFingerprintJson()
{
    std::string model = "unknown";
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
        if (line.rfind("model name", 0) == 0) {
            const std::size_t colon = line.find(':');
            if (colon != std::string::npos) {
                std::size_t start = colon + 1;
                while (start < line.size() && line[start] == ' ')
                    ++start;
                model = line.substr(start);
            }
            break;
        }
    }
    return csprintf(
        "{\"cpu\":\"%s\",\"cores\":%u,\"compiler\":\"%s\","
        "\"checks\":%s}",
        exec::jsonEscape(model).c_str(),
        exec::ExecOptions::hardwareConcurrency(),
        exec::jsonEscape(__VERSION__).c_str(),
        DCL1_CHECK_ENABLED ? "true" : "false");
}

void
header(const std::string &title)
{
    std::printf("\n-- %s --\n", title.c_str());
}

void
row(const std::string &label, const std::vector<double> &values,
    const char *fmt)
{
    std::printf("%-14s", label.c_str());
    for (double v : values)
        std::printf(fmt, v);
    std::printf("\n");
}

void
columns(const std::string &label, const std::vector<std::string> &names)
{
    std::printf("%-14s", label.c_str());
    for (const auto &n : names)
        std::printf("%8s", n.c_str());
    std::printf("\n");
}

} // namespace dcl1::bench
