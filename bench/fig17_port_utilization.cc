/**
 * @file
 * Figure 17: maximum L1/DC-L1 data-port utilization per application
 * (ascending) for the baseline and the proposed designs — aggregation
 * raises per-port utilization because fewer DC-L1s serve the same
 * traffic.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hh"

using namespace dcl1;
using namespace dcl1::bench;

int
main()
{
    Harness h("Figure 17",
              "Max L1/DC-L1 data-port utilization per design");

    const std::vector<core::DesignConfig> designs = {
        core::baselineDesign(), core::privateDcl1(40),
        core::sharedDcl1(40), core::clusteredDcl1(40, 10),
        core::clusteredDcl1(40, 10, true)};
    h.prefetch(designs, h.apps());

    for (const auto &d : designs) {
        std::vector<std::pair<double, std::string>> util;
        for (const auto &app : h.apps())
            util.emplace_back(h.run(d, app).maxL1PortUtil,
                              app.params.name);
        std::sort(util.begin(), util.end());
        header(d.name + " (ascending port utilization)");
        for (const auto &[u, name] : util)
            std::printf("%-14s %6.1f%%\n", name.c_str(), 100.0 * u);
    }
    std::printf("\npaper: all DC-L1 designs show higher per-port "
                "utilization than the baseline's max of 18%%\n");
    return 0;
}
