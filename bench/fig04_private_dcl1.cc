/**
 * @file
 * Figure 4: private DC-L1 designs on the replication-sensitive apps.
 *  (a) IPC of Pr80/Pr40/Pr20/Pr10 normalized to baseline
 *  (b) DC-L1 miss rate normalized to baseline
 *  (c) average IPC with normal vs. perfect (100 % hit) DC-L1s,
 *      including the perfect-L1 private baseline ("Base").
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace dcl1;
using namespace dcl1::bench;

int
main()
{
    Harness h("Figure 4",
              "Private DC-L1 aggregation sweep (replication-sensitive "
              "apps)");

    const std::vector<std::uint32_t> node_counts = {80, 40, 20, 10};
    const auto apps = h.apps(/*sensitive_only=*/true);

    std::vector<core::DesignConfig> designs;
    for (const std::uint32_t y : node_counts)
        designs.push_back(core::privateDcl1(y));
    h.prefetch(designs, apps);

    header("(a) IPC normalized to baseline");
    columns("app", {"Pr80", "Pr40", "Pr20", "Pr10"});
    std::vector<double> ipc_sum(4, 0.0);
    std::vector<double> mr_sum(4, 0.0);
    for (const auto &app : apps) {
        std::vector<double> vals;
        for (std::size_t i = 0; i < node_counts.size(); ++i) {
            const auto d = core::privateDcl1(node_counts[i]);
            vals.push_back(h.speedup(d, app));
            ipc_sum[i] += vals.back();
            const double base_mr = h.baseline(app).l1MissRate;
            mr_sum[i] +=
                base_mr > 0 ? h.run(d, app).l1MissRate / base_mr : 1.0;
        }
        row(app.params.name, vals, "%8.2f");
    }
    std::vector<double> ipc_avg, mr_avg;
    for (std::size_t i = 0; i < node_counts.size(); ++i) {
        ipc_avg.push_back(ipc_sum[i] / double(apps.size()));
        mr_avg.push_back(mr_sum[i] / double(apps.size()));
    }
    row("AVG", ipc_avg, "%8.2f");
    std::printf("paper AVG: Pr80 0.97, Pr40 1.15, Pr20 0.97, Pr10 "
                "0.66\n");

    header("(b) DC-L1 miss rate normalized to baseline (average)");
    columns("", {"Pr80", "Pr40", "Pr20", "Pr10"});
    row("AVG", mr_avg, "%8.2f");
    std::printf("paper: Pr80 ~1.00, Pr40 0.81, Pr20 0.51, Pr10 0.26\n");

    header("(c) average IPC with perfect DC-L1s");
    columns("", {"normal", "perfect"});
    for (std::size_t i = 0; i < node_counts.size(); ++i) {
        const auto d = core::privateDcl1(node_counts[i]);
        double norm = 0, perf = 0;
        for (const auto &app : apps) {
            norm += h.speedup(d, app);
            perf += h.speedup(core::withPerfectL1(d), app);
        }
        row(d.name,
            {norm / double(apps.size()), perf / double(apps.size())},
            "%8.2f");
    }
    double base_perf = 0;
    for (const auto &app : apps)
        base_perf += h.speedup(core::withPerfectL1(core::baselineDesign()),
                               app);
    row("Base", {1.0, base_perf / double(apps.size())}, "%8.2f");
    std::printf("paper: perfect Pr40 2.2x, perfect Base 5.2x; Pr80 "
                "perfect = 3.3x its normal IPC\n");
    return 0;
}
