/**
 * @file
 * perf_core — host-performance benchmark of the simulator itself.
 *
 * Every other bench in this directory measures the *simulated*
 * machine; this one measures the host: how many simulated cycles per
 * wall-clock second does each pinned design sustain, and where do the
 * nanoseconds go? It runs a fixed grid — Baseline (private L1s over
 * one crossbar), CDXBar (combined distributed crossbar), Sh40 (flat
 * DC-L1) and Sh40+C10+Boost (clustered DC-L1 with frequency boost) —
 * so all three Topology kinds and both DC-L1 organizations appear in
 * the trajectory, and emits a schema-versioned BENCH_perf.json that
 * tools/perfdiff can compare across commits.
 *
 * Methodology: per design, 1 discarded warmup repeat + K measured
 * repeats (median-of-K by wall time reported), host phase shares from
 * the src/prof/ profiler, all repeats serial on one thread to keep
 * the numbers quiet. The fingerprint (CPU, cores, compiler, DCL1_CHECK)
 * is embedded so cross-machine comparisons warn instead of lying.
 *
 * Environment:
 *   DCL1_PERF_CYCLES  measured cycles per repeat  (default 30000)
 *   DCL1_PERF_WARMUP  warmup cycles per repeat    (default 5000)
 *   DCL1_PERF_REPEATS measured repeats K          (default 3)
 *   DCL1_PERF_APP     catalog app                 (default T-AlexNet)
 *   DCL1_BENCH_DIR    output directory for BENCH_perf.json
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "common/env.hh"
#include "common/log.hh"
#include "core/gpu_system.hh"
#include "exec/atomic_file.hh"
#include "prof/prof.hh"
#include "stats/stats.hh"
#include "workload/app_catalog.hh"

using namespace dcl1;

namespace
{

using HostClock = std::chrono::steady_clock;

struct Repeat
{
    std::uint64_t wallNs = 0;   ///< build + run, externally bracketed
    Cycle cycles = 0;           ///< measured simulated cycles
    prof::Report report;
};

Repeat
runOnce(const core::SystemConfig &sys, const core::DesignConfig &design,
        const workload::WorkloadParams &app, Cycle cycles, Cycle warmup)
{
    Repeat rep;
    prof::Profiler profiler;
    const HostClock::time_point start = HostClock::now();
    {
        prof::TlsGuard guard(&profiler);
        core::GpuSystem gpu(sys, design, app);
        gpu.run(cycles, warmup);
        rep.cycles = gpu.metrics().cycles;
    }
    rep.wallNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            HostClock::now() - start)
            .count());
    rep.report = profiler.report();
    rep.report.wallNs = rep.wallNs;
    return rep;
}

} // anonymous namespace

int
main()
{
    const Cycle cycles = static_cast<Cycle>(
        envIntOr("DCL1_PERF_CYCLES", 30000, 1, 1'000'000'000));
    const Cycle warmup = static_cast<Cycle>(
        envIntOr("DCL1_PERF_WARMUP", 5000, 0, 1'000'000'000));
    const std::size_t repeats = static_cast<std::size_t>(
        envIntOr("DCL1_PERF_REPEATS", 3, 1, 99));
    const std::string app_name = envStrOr("DCL1_PERF_APP", "T-AlexNet");
    const workload::AppInfo &app = workload::appByName(app_name);

    // Pinned design set: all three topology families, flat + clustered
    // DC-L1. Growing this list is fine (perfdiff matches by name);
    // renaming or shrinking it breaks the BENCH trajectory.
    const std::vector<std::string> design_names = {
        "Baseline", "CDXBar", "Sh40", "Sh40+C10+Boost"};

    core::SystemConfig sys;

    std::printf("==== perf_core ====\n");
    std::printf("host-performance trajectory: %s, %llu cycles "
                "(+%llu warmup), median of %zu (1 discard)\n",
                app_name.c_str(),
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(warmup), repeats);
    std::printf("%-16s %14s %12s %10s\n", "design", "sim_cyc/sec",
                "ns/cycle", "wall ms");

    std::string designs_json;
    for (const std::string &name : design_names) {
        const core::DesignConfig design = core::designByName(name);

        // Repeat 0 warms the host (page cache, allocator, branch
        // predictors) and is discarded.
        (void)runOnce(sys, design, app.params, cycles, warmup);
        std::vector<Repeat> reps;
        for (std::size_t k = 0; k < repeats; ++k)
            reps.push_back(
                runOnce(sys, design, app.params, cycles, warmup));
        std::sort(reps.begin(), reps.end(),
                  [](const Repeat &a, const Repeat &b) {
                      return a.wallNs < b.wallNs;
                  });
        const Repeat &med = reps[reps.size() / 2];

        // Rate over the run loop only (build excluded): that is the
        // number the speed arc moves.
        std::uint64_t run_ns = 0;
        for (const prof::ReportNode &n : med.report.nodes)
            if (n.depth == 0 && n.phase == prof::Phase::Run)
                run_ns += n.totalNs;
        if (run_ns == 0)
            run_ns = med.wallNs; // defensive; Run is always hooked
        const double sim_cps = 1e9 * static_cast<double>(med.cycles) /
                               static_cast<double>(run_ns);
        const double ns_per_cycle =
            static_cast<double>(run_ns) /
            static_cast<double>(med.cycles ? med.cycles : 1);

        std::printf("%-16s %14.0f %12.1f %10.1f\n", name.c_str(),
                    sim_cps, ns_per_cycle,
                    static_cast<double>(med.wallNs) / 1e6);

        // Phase self-time shares of the attributed time (flat: summed
        // over the tree per phase).
        std::uint64_t self_ns[prof::kPhaseCount] = {};
        std::uint64_t covered = 0;
        for (const prof::ReportNode &n : med.report.nodes) {
            self_ns[static_cast<std::size_t>(n.phase)] += n.selfNs;
            covered += n.selfNs;
        }
        std::string shares;
        for (std::size_t i = 0; i < prof::kPhaseCount; ++i) {
            if (!shares.empty())
                shares += ',';
            const double share =
                covered ? static_cast<double>(self_ns[i]) /
                              static_cast<double>(covered)
                        : 0.0;
            shares += csprintf(
                "\"%s\":%s",
                prof::phaseName(static_cast<prof::Phase>(i)),
                stats::formatDouble(share).c_str());
        }
        std::string counters;
        for (std::size_t i = 0; i < prof::kCounterCount; ++i) {
            if (!counters.empty())
                counters += ',';
            counters += csprintf(
                "\"%s\":%llu",
                prof::counterName(static_cast<prof::Counter>(i)),
                static_cast<unsigned long long>(
                    med.report.counters[i]));
        }

        if (!designs_json.empty())
            designs_json += ",\n";
        designs_json += csprintf(
            "    {\"design\": \"%s\", \"sim_cycles_per_sec\": %s, "
            "\"host_ns_per_cycle\": %s, \"wall_ms_median\": %s, "
            "\"run_ns\": %llu, \"coverage\": %s,\n"
            "     \"phase_self_share\": {%s},\n"
            "     \"counters\": {%s}}",
            name.c_str(), stats::formatDouble(sim_cps).c_str(),
            stats::formatDouble(ns_per_cycle).c_str(),
            stats::formatDouble(static_cast<double>(med.wallNs) / 1e6)
                .c_str(),
            static_cast<unsigned long long>(run_ns),
            stats::formatDouble(med.report.coverage()).c_str(),
            shares.c_str(), counters.c_str());
    }

    exec::AtomicFileWriter out(bench::benchOutputPath("BENCH_perf.json"));
    out.stream() << "{\n  \"bench\": \"perf_core\",\n"
                 << "  \"schema\": \"dcl1-perf-v1\",\n"
                 << "  \"fingerprint\": " << bench::machineFingerprintJson()
                 << ",\n  \"app\": \"" << app_name << "\",\n"
                 << "  \"cycles\": " << cycles << ",\n"
                 << "  \"warmup\": " << warmup << ",\n"
                 << "  \"repeats\": " << repeats << ",\n"
                 << "  \"designs\": [\n"
                 << designs_json << "\n  ]\n}\n";
    out.commit();
    inform("wrote %s", out.path().c_str());
    return 0;
}
