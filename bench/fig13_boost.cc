/**
 * @file
 * Figure 13:
 *  (a) the five poor-performing apps under Sh40, Sh40+C10 and
 *      Sh40+C10+Boost, normalized to baseline;
 *  (b) maximum crossbar operating frequency by geometry (DSENT-like).
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "power/xbar_model.hh"

using namespace dcl1;
using namespace dcl1::bench;

int
main()
{
    Harness h("Figure 13",
              "Poor performers under clustering + frequency boost; max "
              "crossbar frequencies");

    std::vector<workload::AppInfo> poor;
    for (const auto &app : h.apps())
        if (app.poorUnderSh40)
            poor.push_back(app);
    h.prefetch({core::sharedDcl1(40), core::clusteredDcl1(40, 10),
                core::clusteredDcl1(40, 10, true)},
               poor);

    header("(a) poor-performing apps, IPC normalized to baseline");
    columns("app", {"Sh40", "C10", "C10+Bst"});
    for (const auto &app : h.apps()) {
        if (!app.poorUnderSh40)
            continue;
        row(app.params.name,
            {h.speedup(core::sharedDcl1(40), app),
             h.speedup(core::clusteredDcl1(40, 10), app),
             h.speedup(core::clusteredDcl1(40, 10, true), app)},
            "%8.2f");
    }
    std::printf("paper: C-RAY/P-3MM/P-GEMM recover under C10 (camping "
                "relieved); P-2DCONV and C-NN recover only with Boost; "
                "max residual drop 49%% (P-2DCONV, C10)\n");

    header("(b) maximum crossbar frequency (GHz)");
    power::XbarModel model;
    struct Geo
    {
        const char *name;
        std::uint32_t in, out;
    };
    for (const Geo &g : {Geo{"80x32 (Baseline)", 80, 32},
                         Geo{"80x40 (Sh40)", 80, 40},
                         Geo{"40x32 (NoC#2)", 40, 32},
                         Geo{"10x8 (C10 NoC#2)", 10, 8},
                         Geo{"8x4 (C10 NoC#1)", 8, 4},
                         Geo{"2x1 (Pr40 NoC#1)", 2, 1}}) {
        std::printf("%-18s %6.2f GHz %s\n", g.name,
                    model.maxFrequencyGHz(g.in, g.out),
                    model.maxFrequencyGHz(g.in, g.out) >= 1.4
                        ? "(can run at 2x 700 MHz)"
                        : "");
    }
    std::printf("\npaper: the 80x32 and 80x40 crossbars cannot run at "
                "2x the 700 MHz baseline; the small 8x4 and 2x1 "
                "crossbars can\n");
    return 0;
}
