/**
 * @file
 * Figure 6: NoC area and static power of the private DC-L1 designs,
 * normalized to the private-L1 baseline (DSENT-like model; no
 * simulation).
 */

#include <cstdio>

#include "core/design.hh"
#include "power/xbar_model.hh"

using namespace dcl1;
using namespace dcl1::core;
using namespace dcl1::power;

int
main()
{
    SystemConfig sys;
    XbarModel model;
    const NocCost base = model.cost(crossbarInventory(baselineDesign(),
                                                      sys));

    std::printf("==== Figure 6 ====\n");
    std::printf("NoC area and static power, private DC-L1 designs "
                "(normalized to baseline)\n\n");
    std::printf("%-10s %10s %14s\n", "config", "area", "static power");
    std::printf("%-10s %10.2f %14.2f\n", "Baseline", 1.0, 1.0);
    for (std::uint32_t y : {80u, 40u, 20u, 10u}) {
        const NocCost c =
            model.cost(crossbarInventory(privateDcl1(y), sys));
        std::printf("%-10s %10.2f %14.2f\n", privateDcl1(y).name.c_str(),
                    c.areaMm2 / base.areaMm2,
                    c.staticPowerW / base.staticPowerW);
    }
    std::printf("\npaper: area Pr80 ~1.0, Pr40 0.72, Pr20 0.46, Pr10 "
                "0.33; static power Pr40 0.96, decreasing for Pr20 and "
                "Pr10\n");
    return 0;
}
