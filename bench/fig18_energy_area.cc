/**
 * @file
 * Figure 18 + Sec. VIII latency analysis for Sh40+C10+Boost:
 *  (a) NoC static / dynamic / total power and energy vs. baseline,
 *      performance-per-watt and energy efficiency;
 *  (b) L1-level area accounting (queues, caches, NoC);
 *  latency: core<->DC-L1 overhead and round-trip-time change.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "power/cache_model.hh"
#include "power/energy_model.hh"
#include "power/xbar_model.hh"

using namespace dcl1;
using namespace dcl1::bench;

int
main()
{
    Harness h("Figure 18 / Sec. VIII",
              "NoC power & energy, area accounting, latency analysis "
              "(Sh40+C10+Boost)");

    const auto boost = core::clusteredDcl1(40, 10, true);
    h.prefetch({boost}, h.apps());
    power::NocEnergyModel energy;

    header("(a) NoC power and energy (all apps, normalized to baseline)");
    double st = 0, dy = 0, tot = 0, en = 0, ppw = 0, ppe = 0, rtt = 0;
    double rtt_sens = 0;
    int n = 0, n_sens = 0;
    for (const auto &app : h.apps()) {
        const auto &base_rm = h.baseline(app);
        const auto &rm = h.run(boost, app);
        const auto base_e =
            energy.evaluate(core::baselineDesign(), h.sys(), base_rm);
        const auto e = energy.evaluate(boost, h.sys(), rm);
        st += e.staticPowerW / base_e.staticPowerW;
        dy += base_e.dynamicPowerW > 0
                  ? e.dynamicPowerW / base_e.dynamicPowerW
                  : 1.0;
        tot += e.totalPowerW / base_e.totalPowerW;
        // Same work in fewer seconds: energy scales with 1/speedup.
        const double speedup = rm.ipc / base_rm.ipc;
        const double e_norm =
            (e.totalPowerW / base_e.totalPowerW) / speedup;
        en += e_norm;
        ppw += speedup / (e.totalPowerW / base_e.totalPowerW);
        ppe += speedup / e_norm;
        rtt += rm.avgReadLatency / base_rm.avgReadLatency;
        if (app.replicationSensitive) {
            rtt_sens += rm.avgReadLatency / base_rm.avgReadLatency;
            ++n_sens;
        }
        ++n;
    }
    columns("", {"static", "dynamic", "total", "energy"});
    row("Sh40+C10+Bst",
        {st / n, dy / n, tot / n, en / n}, "%8.2f");
    std::printf("paper: static 0.84, dynamic 1.20, total 0.98, energy "
                "0.65 (35%% savings)\n");
    std::printf("performance-per-watt %.2fx (paper 1.295x), energy "
                "efficiency %.2fx (paper 1.95x)\n", ppw / n, ppe / n);

    header("(b) L1-level area accounting");
    power::CacheAreaModel cam;
    const auto base_a = cam.l1Breakdown(core::baselineDesign(), h.sys());
    const auto dc_a = cam.l1Breakdown(boost, h.sys());
    std::printf("baseline: %u banks, cache area %.0f KB-equiv\n",
                base_a.banks, base_a.cacheArea / 1024);
    std::printf("DC-L1:    %u banks (50%% fewer ports), cache area "
                "%.0f KB-equiv (%.1f%% saved), queues %.0f KB "
                "(+%.2f%% of baseline L1)\n",
                dc_a.banks, dc_a.cacheArea / 1024,
                100.0 * (1.0 - dc_a.cacheArea / base_a.cacheArea),
                dc_a.queueArea / 1024,
                100.0 * dc_a.queueArea / (80.0 * 16 * 1024));
    power::XbarModel xm;
    const double noc_sv =
        1.0 - xm.cost(core::crossbarInventory(boost, h.sys())).areaMm2 /
                  xm.cost(core::crossbarInventory(core::baselineDesign(),
                                                  h.sys()))
                      .areaMm2;
    std::printf("NoC area saved: %.0f%% (paper 50%%)\n", 100 * noc_sv);

    header("latency analysis (Sec. VIII)");
    std::printf("avg read RTT, Sh40+C10+Boost vs baseline: %.2fx over "
                "all apps, %.2fx over the replication-sensitive apps "
                "(paper: 0.47x, a 53%% reduction)\n",
                rtt / n, n_sens ? rtt_sens / n_sens : 0.0);

    // Decoupling overhead measured on a hit-dominated low-load app.
    const auto &cnn = workload::appByName("C-NN");
    const double base_lat = h.baseline(cnn).avgReadLatency;
    const double dc_lat = h.run(boost, cnn).avgReadLatency;
    std::printf("core<->DC-L1 latency overhead (hit-dominated C-NN): "
                "+%.0f cycles (paper: +54 cycles on average)\n",
                dc_lat - base_lat);
    return 0;
}
