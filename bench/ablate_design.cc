/**
 * @file
 * Ablations of dcl1sim design choices the paper fixes by fiat:
 *  (1) reply sizing — Sec. III sends cores only the requested bytes;
 *      +FullLine sends whole 128 B lines over NoC#1;
 *  (2) DC-L1 node queue depth — the paper's four 128 B entries
 *      vs. shallower/deeper queues;
 *  (3) NoC flit width — Table II's 32 B flits vs. 16 B and 64 B;
 *  (4) L1 replacement policy — LRU (modelled) vs. FIFO and Random.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "common/log.hh"

using namespace dcl1;
using namespace dcl1::bench;

namespace
{

double
ipcOf(const core::SystemConfig &sys, const core::DesignConfig &d,
      const workload::AppInfo &app, const core::ExperimentOptions &opts)
{
    std::fprintf(stderr, "  [run] %-24s %s\n", d.name.c_str(),
                 app.params.name.c_str());
    return core::runOnce(sys, d, app.params, opts).ipc;
}

} // anonymous namespace

int
main()
{
    Harness h("Design ablations",
              "Reply sizing, node queue depth, flit width, replacement "
              "policy");
    const auto &alexnet = workload::appByName("T-AlexNet");
    const auto &bfs = workload::appByName("C-BFS");
    const auto &conv = workload::appByName("P-2DCONV");
    const auto boost = core::clusteredDcl1(40, 10, true);

    header("(1) reply sizing on NoC#1 (Sec. III claim)");
    columns("app", {"sector", "fullline"});
    for (const auto *app : {&alexnet, &bfs, &conv}) {
        const double base = h.baseline(*app).ipc;
        row(app->params.name,
            {h.run(boost, *app).ipc / base,
             h.run(core::withFullLineReplies(boost), *app).ipc / base},
            "%9.2f");
    }
    std::printf("paper: full-line replies would waste NoC#1 bandwidth; "
                "expect the fullline column to trail\n");

    header("(2) DC-L1 node queue depth (paper: 4 entries)");
    columns("depth", {"AlexNet", "C-BFS"});
    for (std::uint32_t depth : {2u, 4u, 8u, 16u}) {
        core::SystemConfig sys;
        sys.nodeQueueCap = depth;
        row(csprintf("%u", depth),
            {ipcOf(sys, boost, alexnet, h.opts()),
             ipcOf(sys, boost, bfs, h.opts())},
            "%9.2f");
    }
    std::printf("(absolute IPC; deeper queues buy little once the "
                "crossbars, not the queues, limit flow)\n");

    header("(3) NoC flit width (Table II: 32 B)");
    columns("flit", {"AlexNet", "P-2DCONV"});
    for (std::uint32_t flit : {16u, 32u, 64u}) {
        core::SystemConfig sys;
        sys.flitBytes = flit;
        row(csprintf("%uB", flit),
            {ipcOf(sys, boost, alexnet, h.opts()),
             ipcOf(sys, boost, conv, h.opts())},
            "%9.2f");
    }
    std::printf("(bandwidth-bound apps track the flit width; "
                "latency-bound apps barely move)\n");

    header("(4) L1/DC-L1 replacement policy (modelled: LRU)");
    columns("policy", {"AlexNet", "C-BFS"});
    const mem::ReplPolicy policies[] = {mem::ReplPolicy::Lru,
                                        mem::ReplPolicy::Fifo,
                                        mem::ReplPolicy::Random};
    const char *names[] = {"LRU", "FIFO", "Random"};
    for (int i = 0; i < 3; ++i) {
        core::SystemConfig sys;
        sys.l1Repl = policies[i];
        row(names[i],
            {ipcOf(sys, boost, alexnet, h.opts()),
             ipcOf(sys, boost, bfs, h.opts())},
            "%9.2f");
    }
    std::printf("(uniform reuse makes the policies nearly equivalent; "
                "the DC-L1 conclusions do not hinge on LRU)\n");

    header("(5) warp scheduler (GPGPU-Sim lrr vs gto)");
    columns("sched", {"AlexNet", "C-BFS"});
    {
        core::SystemConfig lrr, gto;
        gto.warpScheduler = gpucore::WarpSched::GreedyThenOldest;
        row("lrr",
            {ipcOf(lrr, boost, alexnet, h.opts()),
             ipcOf(lrr, boost, bfs, h.opts())},
            "%9.2f");
        row("gto",
            {ipcOf(gto, boost, alexnet, h.opts()),
             ipcOf(gto, boost, bfs, h.opts())},
            "%9.2f");
    }
    std::printf("(latency-tolerant throughput workloads are largely "
                "scheduler-insensitive at this abstraction)\n");

    header("(6) L1 write policy (paper: write-evict; write-back is a "
           "timing-only ablation, no coherence modelled)");
    columns("policy", {"AlexNet", "C-BFS"});
    {
        core::SystemConfig we, wb;
        wb.l1WritePolicy = mem::WritePolicy::WriteBack;
        row("write-evict",
            {ipcOf(we, boost, alexnet, h.opts()),
             ipcOf(we, boost, bfs, h.opts())},
            "%9.2f");
        row("write-back",
            {ipcOf(wb, boost, alexnet, h.opts()),
             ipcOf(wb, boost, bfs, h.opts())},
            "%9.2f");
    }
    std::printf("(write-back removes write-through traffic from NoC#2 "
                "but would need a coherence protocol in a real GPU)\n");
    return 0;
}
