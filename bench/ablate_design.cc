/**
 * @file
 * Ablations of dcl1sim design choices the paper fixes by fiat:
 *  (1) reply sizing — Sec. III sends cores only the requested bytes;
 *      +FullLine sends whole 128 B lines over NoC#1;
 *  (2) DC-L1 node queue depth — the paper's four 128 B entries
 *      vs. shallower/deeper queues;
 *  (3) NoC flit width — Table II's 32 B flits vs. 16 B and 64 B;
 *  (4) L1 replacement policy — LRU (modelled) vs. FIFO and Random.
 */

#include <cstdio>
#include <map>

#include "bench/bench_common.hh"
#include "common/log.hh"

using namespace dcl1;
using namespace dcl1::bench;

int
main()
{
    Harness h("Design ablations",
              "Reply sizing, node queue depth, flit width, replacement "
              "policy");
    const auto &alexnet = workload::appByName("T-AlexNet");
    const auto &bfs = workload::appByName("C-BFS");
    const auto &conv = workload::appByName("P-2DCONV");
    const auto boost = core::clusteredDcl1(40, 10, true);

    const mem::ReplPolicy policies[] = {mem::ReplPolicy::Lru,
                                        mem::ReplPolicy::Fifo,
                                        mem::ReplPolicy::Random};
    const char *names[] = {"LRU", "FIFO", "Random"};

    // Section (1) uses the Table II platform and goes through the
    // Harness cache; sections (2)-(6) modify SystemConfig fields that
    // sys.summary() does not capture, so they are batched through the
    // engine directly, with a key_suffix telling the cells apart.
    h.prefetch({boost, core::withFullLineReplies(boost)},
               {alexnet, bfs, conv});

    exec::JobSet set;
    std::map<std::string, std::size_t> cellIndex;
    auto request = [&](const std::string &tag,
                       const core::SystemConfig &sys,
                       const workload::AppInfo &app) {
        cellIndex[tag + "/" + app.params.name] =
            set.addCell(sys, boost, app.params, h.opts(), tag);
    };
    for (std::uint32_t depth : {2u, 4u, 8u, 16u}) {
        core::SystemConfig sys;
        sys.nodeQueueCap = depth;
        request(csprintf("q%u", depth), sys, alexnet);
        request(csprintf("q%u", depth), sys, bfs);
    }
    for (std::uint32_t flit : {16u, 32u, 64u}) {
        core::SystemConfig sys;
        sys.flitBytes = flit;
        request(csprintf("flit%u", flit), sys, alexnet);
        request(csprintf("flit%u", flit), sys, conv);
    }
    for (int i = 0; i < 3; ++i) {
        core::SystemConfig sys;
        sys.l1Repl = policies[i];
        request(csprintf("repl-%s", names[i]), sys, alexnet);
        request(csprintf("repl-%s", names[i]), sys, bfs);
    }
    {
        core::SystemConfig lrr, gto;
        gto.warpScheduler = gpucore::WarpSched::GreedyThenOldest;
        request("sched-lrr", lrr, alexnet);
        request("sched-lrr", lrr, bfs);
        request("sched-gto", gto, alexnet);
        request("sched-gto", gto, bfs);
    }
    {
        core::SystemConfig we, wb;
        wb.l1WritePolicy = mem::WritePolicy::WriteBack;
        request("wp-we", we, alexnet);
        request("wp-we", we, bfs);
        request("wp-wb", wb, alexnet);
        request("wp-wb", wb, bfs);
    }
    const std::vector<exec::JobResult> results = runJobSet(set);
    auto ipcAt = [&](const std::string &tag,
                     const workload::AppInfo &app) {
        const exec::JobResult &r =
            results.at(cellIndex.at(tag + "/" + app.params.name));
        if (!r.ok)
            panic("ablation cell %s/%s failed: %s", tag.c_str(),
                  app.params.name.c_str(), r.error.c_str());
        return r.metrics.ipc;
    };

    header("(1) reply sizing on NoC#1 (Sec. III claim)");
    columns("app", {"sector", "fullline"});
    for (const auto *app : {&alexnet, &bfs, &conv}) {
        const double base = h.baseline(*app).ipc;
        row(app->params.name,
            {h.run(boost, *app).ipc / base,
             h.run(core::withFullLineReplies(boost), *app).ipc / base},
            "%9.2f");
    }
    std::printf("paper: full-line replies would waste NoC#1 bandwidth; "
                "expect the fullline column to trail\n");

    header("(2) DC-L1 node queue depth (paper: 4 entries)");
    columns("depth", {"AlexNet", "C-BFS"});
    for (std::uint32_t depth : {2u, 4u, 8u, 16u})
        row(csprintf("%u", depth),
            {ipcAt(csprintf("q%u", depth), alexnet),
             ipcAt(csprintf("q%u", depth), bfs)},
            "%9.2f");
    std::printf("(absolute IPC; deeper queues buy little once the "
                "crossbars, not the queues, limit flow)\n");

    header("(3) NoC flit width (Table II: 32 B)");
    columns("flit", {"AlexNet", "P-2DCONV"});
    for (std::uint32_t flit : {16u, 32u, 64u})
        row(csprintf("%uB", flit),
            {ipcAt(csprintf("flit%u", flit), alexnet),
             ipcAt(csprintf("flit%u", flit), conv)},
            "%9.2f");
    std::printf("(bandwidth-bound apps track the flit width; "
                "latency-bound apps barely move)\n");

    header("(4) L1/DC-L1 replacement policy (modelled: LRU)");
    columns("policy", {"AlexNet", "C-BFS"});
    for (int i = 0; i < 3; ++i)
        row(names[i],
            {ipcAt(csprintf("repl-%s", names[i]), alexnet),
             ipcAt(csprintf("repl-%s", names[i]), bfs)},
            "%9.2f");
    std::printf("(uniform reuse makes the policies nearly equivalent; "
                "the DC-L1 conclusions do not hinge on LRU)\n");

    header("(5) warp scheduler (GPGPU-Sim lrr vs gto)");
    columns("sched", {"AlexNet", "C-BFS"});
    row("lrr", {ipcAt("sched-lrr", alexnet), ipcAt("sched-lrr", bfs)},
        "%9.2f");
    row("gto", {ipcAt("sched-gto", alexnet), ipcAt("sched-gto", bfs)},
        "%9.2f");
    std::printf("(latency-tolerant throughput workloads are largely "
                "scheduler-insensitive at this abstraction)\n");

    header("(6) L1 write policy (paper: write-evict; write-back is a "
           "timing-only ablation, no coherence modelled)");
    columns("policy", {"AlexNet", "C-BFS"});
    row("write-evict",
        {ipcAt("wp-we", alexnet), ipcAt("wp-we", bfs)}, "%9.2f");
    row("write-back",
        {ipcAt("wp-wb", alexnet), ipcAt("wp-wb", bfs)}, "%9.2f");
    std::printf("(write-back removes write-through traffic from NoC#2 "
                "but would need a coherence protocol in a real GPU)\n");
    return 0;
}
