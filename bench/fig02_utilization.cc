/**
 * @file
 * Figure 2: maximum per-L1 data-port bandwidth utilization and maximum
 * reply-link utilization under the private-L1 baseline, per
 * application in ascending order.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hh"

using namespace dcl1;
using namespace dcl1::bench;

int
main()
{
    Harness h("Figure 2",
              "Baseline L1 data-port and L2->core reply-link "
              "utilization (max across units)");
    h.prefetch({}, h.apps());

    struct Row
    {
        std::string name;
        double port, link;
    };
    std::vector<Row> rows;
    for (const auto &app : h.apps()) {
        const auto &base = h.baseline(app);
        rows.push_back(
            {app.params.name, base.maxL1PortUtil,
             base.maxCoreReplyLinkUtil});
    }

    auto print_sorted = [&](const char *title, bool by_port) {
        std::sort(rows.begin(), rows.end(),
                  [&](const Row &a, const Row &b) {
                      return by_port ? a.port < b.port : a.link < b.link;
                  });
        header(title);
        for (const auto &r : rows)
            std::printf("%-14s %6.1f%%\n", r.name.c_str(),
                        100.0 * (by_port ? r.port : r.link));
        double mx = 0;
        for (const auto &r : rows)
            mx = std::max(mx, by_port ? r.port : r.link);
        std::printf("max = %.1f%% (paper: %s)\n", 100.0 * mx,
                    by_port ? "18%" : "30%");
    };

    print_sorted("L1 data-port utilization (ascending)", true);
    print_sorted("reply NoC link utilization (ascending)", false);
    return 0;
}
