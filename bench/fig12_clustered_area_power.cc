/**
 * @file
 * Figure 12: NoC area and static power of the clustered shared DC-L1
 * designs by cluster count, normalized to baseline (DSENT-like model).
 */

#include <cstdio>

#include "core/design.hh"
#include "power/xbar_model.hh"

using namespace dcl1;
using namespace dcl1::core;
using namespace dcl1::power;

int
main()
{
    SystemConfig sys;
    XbarModel model;
    const NocCost base =
        model.cost(crossbarInventory(baselineDesign(), sys));

    std::printf("==== Figure 12 ====\n");
    std::printf("NoC area and static power by cluster count "
                "(normalized to baseline)\n\n");
    std::printf("%-10s %10s %14s\n", "config", "area", "static power");
    std::printf("%-10s %10.2f %14.2f\n", "Baseline", 1.0, 1.0);
    for (std::uint32_t z : {1u, 5u, 10u, 20u, 40u}) {
        const DesignConfig d = clusteredDcl1(40, z);
        const NocCost c = model.cost(crossbarInventory(d, sys));
        std::printf("%-10s %10.2f %14.2f\n", d.name.c_str(),
                    c.areaMm2 / base.areaMm2,
                    c.staticPowerW / base.staticPowerW);
    }
    std::printf("\npaper: area savings C5 45%%, C10 50%%, C20 45%%; "
                "static power savings C5 15%%, C10 16%%, C20 14%%\n");
    return 0;
}
