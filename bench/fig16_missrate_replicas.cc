/**
 * @file
 * Figure 16: L1/DC-L1 miss rate of the proposed designs normalized to
 * baseline (replication-sensitive apps), plus the average replica
 * counts the paper quotes in the discussion (7.7 baseline, 5.7 Pr40,
 * 1.0 Sh40, 2.8 Sh40+C10+Boost).
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace dcl1;
using namespace dcl1::bench;

int
main()
{
    Harness h("Figure 16", "Miss rate and replica counts by design");

    const std::vector<core::DesignConfig> designs = {
        core::privateDcl1(40), core::sharedDcl1(40),
        core::clusteredDcl1(40, 10), core::clusteredDcl1(40, 10, true)};
    h.prefetch(designs, h.apps(/*sensitive_only=*/true));

    header("miss rate normalized to baseline (sensitive apps)");
    columns("app", {"Pr40", "Sh40", "C10", "C10+Bst"});
    const auto apps = h.apps(/*sensitive_only=*/true);
    std::vector<double> mr_sum(4, 0);
    std::vector<double> rep_sum(5, 0);
    for (const auto &app : apps) {
        const double base_mr = h.baseline(app).l1MissRate;
        rep_sum[0] += h.baseline(app).avgReplicas;
        std::vector<double> vals;
        for (std::size_t i = 0; i < designs.size(); ++i) {
            const auto &rm = h.run(designs[i], app);
            vals.push_back(base_mr > 0 ? rm.l1MissRate / base_mr : 1.0);
            mr_sum[i] += vals.back();
            rep_sum[i + 1] += rm.avgReplicas;
        }
        row(app.params.name, vals, "%8.2f");
    }
    std::vector<double> mr_avg;
    for (double v : mr_sum)
        mr_avg.push_back(v / double(apps.size()));
    row("AVG", mr_avg, "%8.2f");

    header("average replicas per line (discussion numbers)");
    columns("", {"Base", "Pr40", "Sh40", "C10", "C10+Bst"});
    std::vector<double> rep_avg;
    for (double v : rep_sum)
        rep_avg.push_back(v / double(apps.size()));
    row("replicas", rep_avg, "%8.2f");
    std::printf("paper: baseline 7.7, Pr40 5.7, Sh40 1.0 (zero "
                "replicas), Sh40+C10+Boost 2.8\n");
    return 0;
}
