/**
 * @file
 * Table I: NoC sizes and peak L1 bandwidth under the private DC-L1
 * configurations (analytical; no simulation).
 */

#include <cstdio>

#include "common/log.hh"
#include "core/design.hh"

using namespace dcl1;
using namespace dcl1::core;

namespace
{

/** Render the NoC#1 / NoC#2 column of the inventory. */
std::string
nocString(const DesignConfig &d, const SystemConfig &sys,
          std::uint32_t level)
{
    for (const auto &g : crossbarInventory(d, sys)) {
        if (g.level != level)
            continue;
        if (g.numInputs == 1 && g.numOutputs == 1)
            return csprintf("%u direct links", g.count);
        if (g.count > 1)
            return csprintf("%u x (%ux%u XBar)", g.count, g.numInputs,
                            g.numOutputs);
        return csprintf("%ux%u XBar", g.numInputs, g.numOutputs);
    }
    return "NA";
}

} // anonymous namespace

int
main()
{
    SystemConfig sys;
    std::printf("==== Table I ====\n");
    std::printf("NoC size and peak L1 bandwidth under private DC-L1 "
                "configurations\n\n");
    std::printf("%-10s %-18s %-18s %-22s %-8s\n", "Config.",
                "NoC#1 Crossbars", "NoC#2 Crossbars", "Peak L1 BW",
                "BW drop");

    // Baseline: per-core L1 port delivers a full line per core cycle.
    const double base_bw = double(sys.lineBytes) * sys.numCores;
    std::printf("%-10s %-18s %-18s %4uB x %-2u x 1400MHz %7s\n",
                "Baseline", "NA",
                nocString(baselineDesign(), sys, 2).c_str(),
                sys.lineBytes, sys.numCores, "-");

    for (std::uint32_t y : {80u, 40u, 20u, 10u}) {
        const DesignConfig d = privateDcl1(y);
        // DC-L1 peak bandwidth: each of the Y nodes returns one 32 B
        // flit per NoC cycle (700 MHz), i.e. line/4 per node at half
        // the core clock.
        const double node_bw = double(sys.flitBytes) * 0.5; // per core
                                                            // cycle
        const double bw = node_bw * y;
        std::printf("%-10s %-18s %-18s %4uB x %-2u x  700MHz %6.0fX\n",
                    d.name.c_str(), nocString(d, sys, 1).c_str(),
                    nocString(d, sys, 2).c_str(), sys.flitBytes, y,
                    base_bw / bw);
    }
    std::printf("\npaper: Pr80 4X, Pr40 8X, Pr20 16X, Pr10 32X "
                "(paper counts links at the core clock: 4X/8X/16X/32X "
                "with our 700 MHz flit clock folded in)\n");
    return 0;
}
