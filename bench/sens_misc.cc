/**
 * @file
 * Section VIII-A remaining sensitivity studies:
 *  - distributed CTA scheduler [28] under Sh40+C10+Boost,
 *  - 120-core system (Sh60+C10+Boost),
 *  - boosted baselines (2x L1 capacity, 2x NoC frequency, 2x flit
 *    width) with their model-estimated overheads.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "common/log.hh"
#include "power/cache_model.hh"
#include "power/xbar_model.hh"

using namespace dcl1;
using namespace dcl1::bench;

int
main()
{
    Harness h("Section VIII-A sensitivity studies",
              "CTA scheduling, system size, boosted baselines");

    const auto boost = core::clusteredDcl1(40, 10, true);
    const auto s_apps = h.apps(/*sensitive_only=*/true);

    {
        auto freq2x = core::baselineDesign();
        freq2x.name = "Base+2xNoC";
        freq2x.noc2ClockRatio = 1.0;
        h.prefetch({boost,
                    core::withDistributedCta(core::baselineDesign()),
                    core::withDistributedCta(boost),
                    core::withCapacityScale(core::baselineDesign(), 2.0),
                    freq2x},
                   s_apps);
    }

    header("distributed CTA scheduler (replication-sensitive avg)");
    {
        double rr = 0, dist = 0;
        for (const auto &app : s_apps) {
            rr += h.speedup(boost, app);
            // Both the design and its baseline use the distributed
            // scheduler (it reduces replication for both).
            const double b =
                h.run(core::withDistributedCta(core::baselineDesign()),
                      app)
                    .ipc;
            const double d =
                h.run(core::withDistributedCta(boost), app).ipc;
            dist += d / b;
        }
        columns("", {"RR-CTA", "DistCTA"});
        row("speedup", {rr / s_apps.size(), dist / s_apps.size()},
            "%8.2f");
        std::printf("paper: 1.75x under round-robin, 1.46x under the "
                    "distributed scheduler (locality lowers "
                    "replication)\n");
    }

    header("120-core system: Sh60+C10+Boost (sensitive avg)");
    {
        // The 120-core platform falls outside the Harness cache, so
        // this section runs its grid through the engine directly.
        core::SystemConfig big = core::SystemConfig::scaled(120, 48, 24);
        const auto d120 = core::clusteredDcl1(60, 10, true);
        exec::JobSet set;
        std::vector<std::pair<std::size_t, std::size_t>> cells;
        for (const auto &app : s_apps)
            cells.emplace_back(
                set.addCell(big, core::baselineDesign(), app.params,
                            h.opts()),
                set.addCell(big, d120, app.params, h.opts()));
        const auto results = runJobSet(set);
        double sum = 0;
        for (const auto &[bi, di] : cells) {
            if (!results[bi].ok || !results[di].ok)
                panic("120-core run failed: %s",
                      (results[bi].ok ? results[di] : results[bi])
                          .error.c_str());
            sum += results[di].metrics.ipc / results[bi].metrics.ipc;
        }
        std::printf("speedup %.2fx (paper: 1.67x on 120 cores vs 1.75x "
                    "on 80)\n", sum / s_apps.size());
    }

    header("boosted baselines (replication-sensitive avg)");
    {
        // 2x per-core L1 capacity.
        auto cache2x = core::withCapacityScale(core::baselineDesign(),
                                               2.0);
        // 2x NoC frequency.
        auto freq2x = core::baselineDesign();
        freq2x.name = "Base+2xNoC";
        freq2x.noc2ClockRatio = 1.0;
        double c = 0, f = 0, b = 0;
        for (const auto &app : s_apps) {
            c += h.speedup(cache2x, app);
            f += h.speedup(freq2x, app);
            b += h.speedup(boost, app);
        }
        columns("", {"2xL1$", "2xNoC", "C10+Bst"});
        row("speedup",
            {c / s_apps.size(), f / s_apps.size(), b / s_apps.size()},
            "%8.2f");

        power::CacheAreaModel cam;
        const auto a1 = cam.l1Breakdown(core::baselineDesign(), h.sys());
        const auto a2 = cam.l1Breakdown(cache2x, h.sys());
        std::printf("2xL1$ cache-area overhead: +%.0f%% (paper: "
                    "+84%%)\n",
                    100.0 * (a2.cacheArea / a1.cacheArea - 1.0));
        power::XbarModel xm;
        std::printf("2xNoC feasibility: the 80x32 crossbar tops out at "
                    "%.2f GHz < 1.4 GHz (paper: cannot run at 2x)\n",
                    xm.maxFrequencyGHz(80, 32));
        std::printf("paper: boosted baselines gain 33-36%%, ~22 "
                    "points below Sh40+C10+Boost\n");
    }
    return 0;
}
